// Package parvqmc is a scalable variational quantum Monte Carlo (VQMC)
// library, reproducing "Overcoming barriers to scalability in variational
// quantum Monte Carlo" (Zhao, De, Chen, Stokes, Veerapaneni; SC '21).
//
// VQMC minimizes the Rayleigh quotient of an exponentially large sparse
// symmetric matrix H over a family of neural trial states by alternating
// Monte Carlo sampling with stochastic gradient steps. This package exposes
// the two sampling strategies the paper contrasts — exact autoregressive
// sampling from a MADE wavefunction (embarrassingly parallel, no burn-in)
// and Metropolis-Hastings MCMC from an RBM — together with SGD/Adam/
// stochastic-reconfiguration optimizers, data-parallel multi-device
// training with ring all-reduce, classical Max-Cut baselines, and exact
// diagonalization for validation.
//
// Quick start:
//
//	problem := parvqmc.TIM(16, 1)
//	result, err := parvqmc.Train(problem, parvqmc.Options{})
//	// result.Energy ~ ground-state energy of the 2^16-dim Hamiltonian
package parvqmc

import (
	"fmt"
	"strings"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/device"
	"github.com/vqmc-scale/parvqmc/internal/dist"
	"github.com/vqmc-scale/parvqmc/internal/elastic"
	"github.com/vqmc-scale/parvqmc/internal/exact"
	"github.com/vqmc-scale/parvqmc/internal/graph"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/maxcut"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// Problem is a ground-state problem instance: a sparse symmetric matrix of
// dimension 2^Sites presented through its efficient row structure.
type Problem struct {
	kind string
	ham  hamiltonian.Hamiltonian
	g    *graph.Graph // non-nil for Max-Cut
}

// TIM builds the paper's disordered transverse-field Ising instance on n
// sites: alpha_i ~ U(0,1), beta_i, beta_ij ~ U(-1,1), sampled once from
// seed and fixed.
func TIM(n int, seed uint64) *Problem {
	return &Problem{kind: "tim", ham: hamiltonian.RandomTIM(n, rng.New(seed))}
}

// MaxCut builds the paper's Max-Cut instance: a dense random graph
// round((B+B^T)/2) with B_ij ~ Bernoulli(1/2), encoded as a diagonal
// Hamiltonian whose ground state is a maximum cut.
func MaxCut(n int, seed uint64) *Problem {
	g := graph.RandomBernoulli(n, rng.New(seed))
	return &Problem{kind: "maxcut", ham: hamiltonian.NewMaxCut(g), g: g}
}

// QUBO builds a quadratic unconstrained binary optimization problem
// minimize sum_i Q_ii x_i + sum_{i<j} Q_ij x_i x_j over x in {0,1}^n. The
// coefficient matrix is row-major n x n; only the diagonal and strict upper
// triangle are read. VQMC then acts as a stochastic heuristic solver
// (Section 2.4 of the paper generalizes Max-Cut to this family).
func QUBO(q []float64, n int) *Problem {
	return &Problem{kind: "qubo", ham: hamiltonian.NewQUBO(q, n)}
}

// RandomQUBO builds a QUBO with coefficients drawn uniformly from [-1, 1].
func RandomQUBO(n int, seed uint64) *Problem {
	return &Problem{kind: "qubo", ham: hamiltonian.RandomQUBO(n, rng.New(seed))}
}

// Sites returns the number of binary sites n (the matrix dimension is 2^n).
func (p *Problem) Sites() int { return p.ham.N() }

// Kind returns "tim" or "maxcut".
func (p *Problem) Kind() string { return p.kind }

// TotalEdgeWeight returns the graph's total edge weight (Max-Cut only).
func (p *Problem) TotalEdgeWeight() float64 {
	if p.g == nil {
		return 0
	}
	return p.g.TotalWeight()
}

// CutOf converts an energy to a cut value for Max-Cut problems.
func (p *Problem) CutOf(energy float64) (float64, bool) {
	mc, ok := p.ham.(*hamiltonian.MaxCut)
	if !ok {
		return 0, false
	}
	return mc.CutFromEnergy(energy), true
}

// CutOfAssignment returns the cut of a 0/1 assignment (Max-Cut only).
func (p *Problem) CutOfAssignment(x []int) (float64, bool) {
	if p.g == nil {
		return 0, false
	}
	return p.g.CutValue(x), true
}

// ExactGroundEnergy computes the exact minimal eigenvalue by Lanczos
// (TIM, n <= 22) or exhaustive scan (diagonal problems, n <= 24).
func (p *Problem) ExactGroundEnergy() (float64, error) {
	if len(p.ham.FlipTerms()) == 0 {
		e, _, err := exact.GroundStateDiagonal(p.ham, 0)
		return e, err
	}
	res, err := exact.GroundState(p.ham, 0, 7)
	return res.Energy, err
}

// Options configures a training run. The zero value reproduces the paper's
// default configuration: MADE wavefunction with h = 5(ln n)^2, exact
// autoregressive sampling, Adam with learning rate 0.01, batch 1024, 300
// iterations.
type Options struct {
	// Model selects the wavefunction: "made" (default), "rbm", "nade" or
	// "rnn".
	Model string
	// Hidden overrides the latent size (default: 5(ln n)^2 for MADE, n for
	// RBM).
	Hidden int
	// Sampler selects "auto" (exact ancestral sampling, default for MADE;
	// batched site-major when BatchedEval is on, incremental otherwise —
	// same bits either way), "auto-naive" (Algorithm 1: n forward passes
	// per sample), or "mcmc" (default for RBM).
	Sampler string
	// Optimizer is "adam" (default, lr 0.01) or "sgd" (lr 0.1).
	Optimizer string
	// LearningRate overrides the optimizer default.
	LearningRate float64
	// StochasticReconfig preconditions gradients with the Fisher matrix
	// (SR; natural gradient). The paper pairs it with SGD.
	StochasticReconfig bool
	// SRLambda is the SR regularization (default 1e-3).
	SRLambda float64
	// SRSolver selects the Fisher CG variant: "cg" (classic, default) or
	// "pipelined" (Gropp's overlapped variant — in distributed training
	// every per-iteration collective is non-blocking and hidden behind the
	// recurrence updates; serially it is the identical algorithm).
	SRSolver string
	// BatchedEval selects the evaluation path. nil or true (the default)
	// fuses sampling, local-energy and gradient evaluation into blocked
	// matrix products over the batch dimension whenever the model supports
	// it (MADE); false forces the per-sample scalar path, kept reachable
	// for A/B timing (the `batched` experiment, -batched-eval=false). The
	// two paths are bitwise identical — same energies, same gradients,
	// same sampled bits — so the knob never changes a result.
	BatchedEval *bool
	// BatchSize is samples per iteration (default 1024).
	BatchSize int
	// Iterations is the number of training steps (default 300).
	Iterations int
	// EvalBatch is the evaluation batch (default 1024).
	EvalBatch int
	// Workers bounds CPU parallelism (default GOMAXPROCS).
	Workers int
	// Seed drives all randomness (default 1).
	Seed uint64
	// MCMC settings (zero values = paper defaults: 2 chains, burn-in
	// 3n+100, no thinning).
	MCMCChains, MCMCBurnIn, MCMCThin int
	// Elastic enables supervised fault handling in TrainDistributed: on a
	// replica failure the run replaces the dead rank (bit-identical resume,
	// with bounded retries), falls back to continuing on the survivors as a
	// legal smaller run, re-grows to the original width after a stretch of
	// clean steps, and aborts with a final checkpoint only below the
	// MinReplicas floor. Ignored by serial Train.
	Elastic bool
	// MinReplicas is the elastic membership floor (default 1: shrink as
	// long as anyone survives).
	MinReplicas int
	// CheckpointDir, when non-empty, is where elastic recovery, growth and
	// final checkpoints are written. Empty keeps recovery checkpoints in
	// memory and skips the final artifact.
	CheckpointDir string
}

func (o *Options) fill(n int) error {
	if o.Model == "" {
		o.Model = "made"
	}
	o.Model = strings.ToLower(o.Model)
	switch o.Model {
	case "made", "rbm", "nade", "rnn":
	default:
		return fmt.Errorf("parvqmc: unknown model %q", o.Model)
	}
	if o.Sampler == "" {
		if o.Model == "rbm" {
			o.Sampler = "mcmc"
		} else {
			o.Sampler = "auto"
		}
	}
	o.Sampler = strings.ToLower(o.Sampler)
	if o.Model == "rbm" && o.Sampler != "mcmc" && o.Sampler != "gibbs" {
		return fmt.Errorf("parvqmc: RBM requires an approximate sampler (mcmc or gibbs); it is unnormalized")
	}
	if o.Model != "rbm" && o.Sampler == "gibbs" {
		return fmt.Errorf("parvqmc: the gibbs sampler requires the rbm model (bipartite structure)")
	}
	if o.Hidden <= 0 {
		switch o.Model {
		case "rbm":
			o.Hidden = n
		case "rnn":
			// O(h^2) recurrence: a narrower default keeps the parameter
			// budget comparable to MADE's 2hn.
			o.Hidden = device.HiddenMADE(n) / 2
			if o.Hidden < 4 {
				o.Hidden = 4
			}
		default:
			o.Hidden = device.HiddenMADE(n)
		}
	}
	if o.Optimizer == "" {
		o.Optimizer = "adam"
	}
	o.Optimizer = strings.ToLower(o.Optimizer)
	if o.Optimizer != "adam" && o.Optimizer != "sgd" {
		return fmt.Errorf("parvqmc: unknown optimizer %q", o.Optimizer)
	}
	if o.LearningRate <= 0 {
		if o.Optimizer == "adam" {
			o.LearningRate = 0.01
		} else {
			o.LearningRate = 0.1
		}
	}
	if o.SRLambda <= 0 {
		o.SRLambda = 1e-3
	}
	switch strings.ToLower(o.SRSolver) {
	case "", "cg", "classic":
		o.SRSolver = "cg"
	case "pipelined", "pipecg":
		o.SRSolver = "pipelined"
	default:
		return fmt.Errorf("parvqmc: unknown SR solver %q (want cg or pipelined)", o.SRSolver)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 1024
	}
	if o.Iterations <= 0 {
		o.Iterations = 300
	}
	if o.EvalBatch <= 0 {
		o.EvalBatch = 1024
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// batchedOn resolves the BatchedEval knob (nil means on).
func (o *Options) batchedOn() bool { return o.BatchedEval == nil || *o.BatchedEval }

// evalMode maps the knob onto the trainer's evaluation mode.
func (o *Options) evalMode() core.EvalMode {
	if o.batchedOn() {
		return core.EvalAuto
	}
	return core.EvalScalar
}

// IterationStat is one recorded training iteration.
type IterationStat struct {
	Iteration int
	// Batch is the global number of samples behind this iteration's
	// statistics — devices x mini-batch in distributed training, where
	// elastic membership changes can move it mid-run.
	Batch  int
	Energy float64 // batch mean local energy
	Std    float64 // batch std-dev (vanishes at an exact eigenstate)
	// SRIters and SRResidual report the stochastic-reconfiguration CG
	// solve of the iteration (zero when SR is disabled).
	SRIters    int
	SRResidual float64
}

// Result summarizes a training run.
type Result struct {
	// Energy and Std are evaluated on a fresh batch after training.
	Energy, Std float64
	// BestEnergy is the lowest local energy in the evaluation batch and
	// BestConfig the configuration achieving it — the solver metric for
	// combinatorial problems.
	BestEnergy float64
	BestConfig []int
	// Cut is the evaluated mean cut value for Max-Cut problems (else 0).
	Cut float64
	// BestCut is the cut of the best evaluation sample (Max-Cut only).
	BestCut float64
	// Curve is the per-iteration training record.
	Curve []IterationStat
	// TrainTime is the wall-clock training duration.
	TrainTime time.Duration
	// ForwardPasses counts sampling work in the paper's Figure 1 units.
	ForwardPasses int64
	// Elastic summarizes supervised fault handling; nil unless
	// Options.Elastic was set on a TrainDistributed run.
	Elastic *ElasticStats

	model nn.Wavefunction
}

// ElasticStats summarizes what the elastic supervisor did during a
// TrainDistributed run with Options.Elastic set.
type ElasticStats struct {
	// Failures is the number of failed steps handled.
	Failures int
	// Replacements, Retries: successful dead-rank replacements and the
	// extra recovery attempts they took.
	Replacements, Retries int
	// Shrinks and Grows count membership changes.
	Shrinks, Grows int
	// FinalReplicas is the width the run finished at.
	FinalReplicas int
	// FinalCheckpoint is the final checkpoint artifact's path ("" when
	// Options.CheckpointDir was empty).
	FinalCheckpoint string
}

// SaveModel writes the trained wavefunction to path in the library's
// binary checkpoint format; reload it with LoadModelOptions.
func (r *Result) SaveModel(path string) error {
	if r.model == nil {
		return fmt.Errorf("parvqmc: result carries no model")
	}
	return nn.SaveFile(path, r.model)
}

func (o Options) buildOptimizer() (optimizer.Optimizer, *optimizer.SR) {
	var opt optimizer.Optimizer
	if o.Optimizer == "adam" {
		opt = optimizer.NewAdam(o.LearningRate)
	} else {
		opt = optimizer.NewSGD(o.LearningRate)
	}
	var sr *optimizer.SR
	if o.StochasticReconfig {
		sr = optimizer.NewSR(o.SRLambda)
		if o.SRSolver == "pipelined" {
			sr.Solver = optimizer.SolverPipelined
		}
	}
	return opt, sr
}

// Train runs VQMC on the problem and returns the result.
func Train(p *Problem, o Options) (*Result, error) {
	n := p.Sites()
	if err := o.fill(n); err != nil {
		return nil, err
	}
	r := rng.New(o.Seed)
	batched := o.batchedOn()

	var model core.Model
	var smp sampler.Sampler
	mcmcCfg := sampler.MCMCConfig{Chains: o.MCMCChains, BurnIn: o.MCMCBurnIn, Thin: o.MCMCThin}
	switch o.Model {
	case "made":
		m := nn.NewMADE(n, o.Hidden, r.Split())
		model = m
		switch o.Sampler {
		case "auto":
			// The batched ancestral mode draws bit-identical samples from
			// the same streams; it only changes the loop order.
			if batched {
				smp = sampler.NewAutoBatched(n, m, o.Workers, r.Split())
			} else {
				smp = sampler.NewAutoMADE(m, true, o.Workers, r.Split())
			}
		case "auto-naive":
			smp = sampler.NewAutoMADE(m, false, o.Workers, r.Split())
		case "mcmc":
			smp = sampler.NewMCMC(m, mcmcCfg, r.Split())
		default:
			return nil, fmt.Errorf("parvqmc: unknown sampler %q", o.Sampler)
		}
	case "nade":
		m := nn.NewNADE(n, o.Hidden, r.Split())
		model = m
		switch o.Sampler {
		case "auto":
			if batched {
				smp = sampler.NewAutoBatched(n, m, o.Workers, r.Split())
			} else {
				smp = sampler.NewAuto(n, m.NewIncrementalEvaluator, o.Workers, r.Split())
			}
		case "auto-naive": // NADE's scalar evaluation is inherently incremental
			smp = sampler.NewAuto(n, m.NewIncrementalEvaluator, o.Workers, r.Split())
		case "mcmc":
			smp = sampler.NewMCMC(m, mcmcCfg, r.Split())
		default:
			return nil, fmt.Errorf("parvqmc: unknown sampler %q", o.Sampler)
		}
	case "rnn":
		m := nn.NewRNN(n, o.Hidden, r.Split())
		model = m
		switch o.Sampler {
		case "auto":
			if batched {
				smp = sampler.NewAutoBatched(n, m, o.Workers, r.Split())
			} else {
				smp = sampler.NewAuto(n, m.NewIncrementalEvaluator, o.Workers, r.Split())
			}
		case "auto-naive":
			smp = sampler.NewAuto(n, m.NewIncrementalEvaluator, o.Workers, r.Split())
		case "mcmc":
			smp = sampler.NewMCMC(m, mcmcCfg, r.Split())
		default:
			return nil, fmt.Errorf("parvqmc: unknown sampler %q", o.Sampler)
		}
	case "rbm":
		m := nn.NewRBM(n, o.Hidden, r.Split())
		model = m
		if o.Sampler == "gibbs" {
			smp = sampler.NewGibbs(m, mcmcCfg, r.Split())
		} else {
			smp = sampler.NewMCMC(m, mcmcCfg, r.Split())
		}
	}

	opt, sr := o.buildOptimizer()
	tr := core.New(p.ham, model, smp, opt, core.Config{
		BatchSize: o.BatchSize, Workers: o.Workers, SR: sr, Eval: o.evalMode()})

	start := time.Now()
	curve := tr.Train(o.Iterations, nil)
	elapsed := time.Since(start)
	mean, std, best, argBest := tr.EvaluateBest(o.EvalBatch)

	res := &Result{
		Energy: mean, Std: std, BestEnergy: best, BestConfig: argBest,
		TrainTime:     elapsed,
		ForwardPasses: smp.Cost().ForwardPasses,
		model:         model,
	}
	for _, s := range curve {
		res.Curve = append(res.Curve, IterationStat{Iteration: s.Iter, Batch: s.Batch,
			Energy: s.Energy, Std: s.Std, SRIters: s.SRIters, SRResidual: s.SRResidual})
	}
	if cut, ok := p.CutOf(mean); ok {
		res.Cut = cut
		res.BestCut, _ = p.CutOf(best)
	}
	return res, nil
}

// distModel constructs one replica's wavefunction. Every replica is built
// from an identical init stream, so parameters start bit-identical.
func (o Options) distModel(n int) dist.Model {
	init := rng.New(o.Seed + 12345)
	switch o.Model {
	case "nade":
		return nn.NewNADE(n, o.Hidden, init)
	case "rnn":
		return nn.NewRNN(n, o.Hidden, init)
	default:
		return nn.NewMADE(n, o.Hidden, init)
	}
}

// distSampler constructs the exact ancestral sampler for a distributed
// replica's model, honoring the BatchedEval knob (both paths draw
// bit-identical samples from the same stream).
func (o Options) distSampler(n int, m dist.Model, stream *rng.Rand) (sampler.Sampler, error) {
	switch mm := m.(type) {
	case *nn.MADE:
		if o.batchedOn() {
			return sampler.NewAutoBatched(n, mm, 1, stream), nil
		}
		return sampler.NewAutoMADE(mm, true, 1, stream), nil
	case *nn.NADE:
		if o.batchedOn() {
			return sampler.NewAutoBatched(n, mm, 1, stream), nil
		}
		return sampler.NewAuto(n, mm.NewIncrementalEvaluator, 1, stream), nil
	case *nn.RNNWavefunction:
		if o.batchedOn() {
			return sampler.NewAutoBatched(n, mm, 1, stream), nil
		}
		return sampler.NewAuto(n, mm.NewIncrementalEvaluator, 1, stream), nil
	default:
		return nil, fmt.Errorf("parvqmc: no distributed sampler for model %T", m)
	}
}

// TrainDistributed runs the paper's data-parallel scheme: devices replicas
// (goroutines) each sample miniBatch configurations per iteration, gradients
// are combined with a ring all-reduce, and every replica applies the same
// update. The effective batch is devices*miniBatch. The autoregressive
// families (made, nade, rnn) are supported, each with exact ancestral
// sampling, matching the paper's scalability experiments.
//
// With Options.StochasticReconfig set, the gradient is preconditioned by
// distributed SR: each replica keeps only its private O_k rows and the
// matrix-free Fisher CG solve performs one packed ring all-reduce per
// iteration; Options.SRSolver "pipelined" issues those collectives
// non-blocking and hides them behind the CG recurrence updates (Gropp's
// overlapped variant), without perturbing the result beyond solver
// round-off. Options.Workers (default 1 in distributed mode) additionally
// fans each replica's local-energy and gradient evaluation across that many
// goroutines — the two-level replica x worker scheme modeling node x GPU
// hierarchies. Neither knob perturbs the bit-identity of the replicas.
//
// With Options.Elastic set, the run is supervised: a replica failure is
// handled by replacement (bit-identical resume, bounded retries with
// backoff), then by shrinking to the survivors as a legal smaller run, with
// re-growth to the original width after a stretch of clean steps, and a
// clean checkpointed abort below the Options.MinReplicas floor. The per-step
// Batch column of the returned curve records the effective global batch the
// membership provided at each iteration.
func TrainDistributed(p *Problem, o Options, devices, miniBatch int) (*Result, error) {
	n := p.Sites()
	if err := o.fill(n); err != nil {
		return nil, err
	}
	switch o.Model {
	case "made", "nade", "rnn":
	default:
		return nil, fmt.Errorf("parvqmc: distributed training supports the autoregressive models (made, nade, rnn)")
	}
	if devices <= 0 || miniBatch <= 0 {
		return nil, fmt.Errorf("parvqmc: devices and miniBatch must be positive")
	}
	// In distributed mode the replicas are the primary parallel dimension,
	// so per-replica workers default to 1 rather than GOMAXPROCS.
	workers := o.Workers
	if workers < 1 {
		workers = 1
	}
	streams := rng.New(o.Seed).SplitN(devices)
	reps := make([]dist.Replica, devices)
	for rdev := 0; rdev < devices; rdev++ {
		m := o.distModel(n)
		smp, err := o.distSampler(n, m, streams[rdev])
		if err != nil {
			return nil, err
		}
		opt, sr := o.buildOptimizer()
		reps[rdev] = dist.Replica{
			Model:   m,
			Smp:     smp,
			Opt:     opt,
			SR:      sr,
			Workers: workers,
			Eval:    o.evalMode(),
		}
	}
	tr, err := dist.New(p.ham, reps, miniBatch)
	if err != nil {
		return nil, err
	}

	var hist []core.IterStats
	var estats *ElasticStats
	start := time.Now()
	if o.Elastic {
		// Replacement and admitted ranks get their own deterministic sampler
		// streams, keyed by rank and seed. Recover rewinds a replacement to
		// the dead rank's stream position anyway; an admitted (Grow) rank
		// keeps this stream.
		build := func(rank int, model dist.Model) (dist.Replica, error) {
			smp, err := o.distSampler(n, model, rng.New(o.Seed+0x9E3779B9+uint64(rank)*0x1000003))
			if err != nil {
				return dist.Replica{}, err
			}
			opt, sr := o.buildOptimizer()
			return dist.Replica{Model: model, Smp: smp, Opt: opt, SR: sr,
				Workers: workers, Eval: o.evalMode()}, nil
		}
		tr.SetCollectiveDeadline(30 * time.Second)
		sup, err := elastic.New(tr, elastic.Policy{
			MinReplicas:   o.MinReplicas,
			MaxRetries:    2,
			Backoff:       100 * time.Millisecond,
			BackoffMax:    2 * time.Second,
			CheckpointDir: o.CheckpointDir,
			Builder:       build,
			GrowAfter:     10,
		})
		if err != nil {
			return nil, err
		}
		hist, err = sup.Train(o.Iterations, nil)
		tr = sup.Trainer()
		st := sup.Stats()
		if err != nil {
			return nil, fmt.Errorf("parvqmc: supervised distributed training aborted after %d steps (final checkpoint %q): %w",
				len(hist), st.FinalCheckpoint, err)
		}
		estats = &ElasticStats{
			Failures: st.Failures, Replacements: st.Replacements, Retries: st.Retries,
			Shrinks: st.Shrinks, Grows: st.Grows,
			FinalReplicas: tr.Devices(), FinalCheckpoint: st.FinalCheckpoint,
		}
	} else {
		hist, err = tr.Train(o.Iterations, nil)
		if err != nil {
			return nil, fmt.Errorf("parvqmc: distributed training failed: %w", err)
		}
	}
	elapsed := time.Since(start)
	mean, std, err := tr.Evaluate(o.EvalBatch)
	if err != nil {
		return nil, fmt.Errorf("parvqmc: distributed evaluation failed: %w", err)
	}
	res := &Result{Energy: mean, Std: std, TrainTime: elapsed, Elastic: estats}
	for _, s := range hist {
		res.Curve = append(res.Curve, IterationStat{Iteration: s.Iter, Batch: s.Batch,
			Energy: s.Energy, Std: s.Std, SRIters: s.SRIters, SRResidual: s.SRResidual})
	}
	if cut, ok := p.CutOf(mean); ok {
		res.Cut = cut
	}
	return res, nil
}

// ClassicalResult is the outcome of a classical Max-Cut solver.
type ClassicalResult struct {
	Cut        float64
	Assignment []int
	SDPBound   float64
}

// SolveMaxCutClassical runs one of the paper's baselines on a Max-Cut
// problem: "random", "gw" (Goemans-Williamson) or "bm" (Burer-Monteiro with
// Riemannian trust region).
func SolveMaxCutClassical(p *Problem, method string, seed uint64) (*ClassicalResult, error) {
	if p.g == nil {
		return nil, fmt.Errorf("parvqmc: %q is not a Max-Cut problem", p.kind)
	}
	r := rng.New(seed)
	var res maxcut.Result
	switch strings.ToLower(method) {
	case "random":
		res = maxcut.Random(p.g, r)
	case "gw", "goemans-williamson":
		res = maxcut.GoemansWilliamson(p.g, maxcut.GWConfig{}, r)
	case "bm", "burer-monteiro":
		res = maxcut.BurerMonteiro(p.g, maxcut.BMConfig{}, r)
	default:
		return nil, fmt.Errorf("parvqmc: unknown classical method %q", method)
	}
	return &ClassicalResult{Cut: res.Cut, Assignment: res.Assignment, SDPBound: res.SDPBound}, nil
}

// DefaultHidden returns the paper's latent-size rule for a model kind.
func DefaultHidden(model string, n int) int {
	if strings.ToLower(model) == "rbm" {
		return n
	}
	return device.HiddenMADE(n)
}
