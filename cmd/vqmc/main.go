// Command vqmc trains a neural wavefunction on a TIM or Max-Cut instance
// and reports the converged energy (and cut, for Max-Cut).
//
// Examples:
//
//	vqmc -problem tim -n 16 -iters 300 -batch 512
//	vqmc -problem maxcut -n 50 -model rbm -optimizer sgd -sr
//	vqmc -problem tim -n 12 -exact            # compare against Lanczos
//	vqmc -problem tim -n 20 -devices 4 -mbs 4 # data-parallel training
//	vqmc -problem tim -n 14 -devices 4 -mbs 16 -optimizer sgd -sr -sr-solver pipelined
//	vqmc -problem tim -n 16 -devices 4 -mbs 8 -elastic -min-replicas 2 -checkpoint-dir ckpt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/vqmc-scale/parvqmc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vqmc: ")

	var (
		problem = flag.String("problem", "tim", "problem kind: tim or maxcut")
		n       = flag.Int("n", 16, "number of sites (matrix dimension is 2^n)")
		seed    = flag.Uint64("seed", 1, "root random seed")
		model   = flag.String("model", "made", "wavefunction: made, rbm, nade or rnn")
		smp     = flag.String("sampler", "", "sampler: auto, auto-naive or mcmc (default by model)")
		opt     = flag.String("optimizer", "adam", "optimizer: adam or sgd")
		lr      = flag.Float64("lr", 0, "learning rate (0 = optimizer default)")
		sr      = flag.Bool("sr", false, "enable stochastic reconfiguration (natural gradient)")
		srSolve = flag.String("sr-solver", "cg", "SR Fisher solver: cg (classic) or pipelined (overlapped collectives)")
		hidden  = flag.Int("hidden", 0, "latent size (0 = paper rule)")
		batch   = flag.Int("batch", 1024, "training batch size")
		iters   = flag.Int("iters", 300, "training iterations")
		evalB   = flag.Int("eval-batch", 1024, "evaluation batch size")
		burnIn  = flag.Int("mcmc-burnin", 0, "MCMC burn-in (0 = 3n+100)")
		thin    = flag.Int("mcmc-thin", 0, "MCMC thinning (0 = none)")
		chains  = flag.Int("mcmc-chains", 0, "MCMC chains (0 = 2)")
		batched = flag.Bool("batched-eval", true, "fuse evaluation into blocked GEMMs over the batch (bitwise identical; false = per-sample scalar path for A/B timing)")
		devices = flag.Int("devices", 1, "data-parallel device count (autoregressive models)")
		workers = flag.Int("workers", 0, "CPU workers (serial: 0 = all cores; per replica with -devices: 0 = 1)")
		mbs     = flag.Int("mbs", 0, "per-device mini-batch for -devices > 1")
		elastic = flag.Bool("elastic", false, "supervise distributed training: replace failed replicas, shrink to survivors, re-grow")
		minRep  = flag.Int("min-replicas", 1, "elastic membership floor; below it the run aborts with a final checkpoint")
		ckptDir = flag.String("checkpoint-dir", "", "directory for elastic recovery/final checkpoints (empty = in-memory)")
		doExact = flag.Bool("exact", false, "also compute the exact ground energy (small n)")
		curve   = flag.Bool("curve", false, "print the per-iteration training curve")
		save    = flag.String("save", "", "write the trained model checkpoint to this path")
	)
	flag.Parse()

	var p *parvqmc.Problem
	switch *problem {
	case "tim":
		p = parvqmc.TIM(*n, *seed)
	case "maxcut":
		p = parvqmc.MaxCut(*n, *seed)
	default:
		log.Fatalf("unknown problem %q (want tim or maxcut)", *problem)
	}

	o := parvqmc.Options{
		Model: *model, Sampler: *smp, Optimizer: *opt, LearningRate: *lr,
		StochasticReconfig: *sr, SRSolver: *srSolve, Hidden: *hidden, BatchSize: *batch,
		Iterations: *iters, EvalBatch: *evalB, Workers: *workers, Seed: *seed,
		MCMCBurnIn: *burnIn, MCMCThin: *thin, MCMCChains: *chains,
		BatchedEval: batched,
		Elastic:     *elastic, MinReplicas: *minRep, CheckpointDir: *ckptDir,
	}

	var res *parvqmc.Result
	var err error
	if *devices > 1 {
		m := *mbs
		if m <= 0 {
			m = 4
		}
		res, err = parvqmc.TrainDistributed(p, o, *devices, m)
	} else {
		res, err = parvqmc.Train(p, o)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("problem      %s n=%d (dimension 2^%d)\n", p.Kind(), p.Sites(), p.Sites())
	fmt.Printf("train time   %v\n", res.TrainTime.Round(1e6))
	fmt.Printf("energy       %.6f +- %.6f (eval batch %d)\n", res.Energy, res.Std, *evalB)
	if cut, ok := p.CutOf(res.Energy); ok {
		fmt.Printf("cut          %.2f of total weight %.0f\n", cut, p.TotalEdgeWeight())
	}
	if es := res.Elastic; es != nil {
		fmt.Printf("elastic      %d failures, %d replaced (%d retries), %d shrinks, %d grows; finished on %d replicas\n",
			es.Failures, es.Replacements, es.Retries, es.Shrinks, es.Grows, es.FinalReplicas)
		if es.FinalCheckpoint != "" {
			fmt.Printf("checkpoint   %s\n", es.FinalCheckpoint)
		}
	}
	if *doExact {
		e, err := p.ExactGroundEnergy()
		if err != nil {
			log.Fatalf("exact diagonalization: %v", err)
		}
		fmt.Printf("exact energy %.6f (relative gap %.4f)\n", e, (res.Energy-e)/abs(e))
	}
	if *curve {
		fmt.Println("iter,energy,std")
		for _, s := range res.Curve {
			fmt.Printf("%d,%.6f,%.6f\n", s.Iteration, s.Energy, s.Std)
		}
	}
	if *save != "" {
		if err := res.SaveModel(*save); err != nil {
			log.Fatalf("saving model: %v", err)
		}
		fmt.Printf("model saved  %s\n", *save)
	}
	os.Exit(0)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
