// Command doccheck enforces the godoc contract on selected packages: every
// exported top-level symbol (function, method, type, and const/var
// declaration) must carry a doc comment. It is the CI teeth behind the
// documentation doctrine of docs/ARCHITECTURE.md — conventions like the
// flip-cache tail-only invariant and the BatchEvaluator bitwise guarantee
// live in doc comments, so an undocumented export is a broken contract,
// not a style nit.
//
//	go run ./cmd/doccheck ./internal/nn ./internal/tensor ./internal/dist
//
// Exits non-zero listing every undocumented exported symbol. Test files
// are ignored.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> [package-dir...]")
		os.Exit(2)
	}
	var missing []string
	for _, dir := range os.Args[1:] {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		for _, m := range missing {
			fmt.Println(m)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d exported symbol(s) missing doc comments\n", len(missing))
		os.Exit(1)
	}
}

// checkDir parses every non-test Go file in dir and returns one line per
// undocumented exported declaration.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	flag := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
						flag(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, flag)
				}
			}
		}
	}
	return out, nil
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are internal API and exempt).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// checkGenDecl flags undocumented exported type, const and var specs. A doc
// comment on the grouped declaration covers every spec inside it.
func checkGenDecl(d *ast.GenDecl, flag func(token.Pos, string, string)) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				flag(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					flag(name.Pos(), d.Tok.String(), name.Name)
				}
			}
		}
	}
}
