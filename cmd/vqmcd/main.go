// Command vqmcd is the long-running inference server over internal/serve:
// a checkpoint-backed model registry behind a JSON HTTP API, with
// cross-request batch coalescing on every evaluation endpoint and a
// bounded Max-Cut solver pool.
//
//	vqmcd -demo                                # serve a demo MADE model on :8089
//	vqmcd -model psi=final.ckpt                # serve a trained checkpoint
//	vqmcd -model a=a.ckpt -model b=b.ckpt      # several models, one server
//	vqmcd -demo -window 500us -max-batch 256   # coalescer tuning
//
// Endpoints (see internal/serve/http.go for payloads):
//
//	GET  /healthz                        liveness
//	GET  /v1/models                      registry listing
//	GET  /v1/models/{name}/stats         serving counters
//	POST /v1/models/{name}/logpsi        log|psi| per configuration
//	POST /v1/models/{name}/energy        local energies (demo model only:
//	                                     checkpoints carry no Hamiltonian)
//	POST /v1/models/{name}/sample        exact ancestral samples
//	POST /v1/models/{name}/swap          hot-swap to a new checkpoint
//	                                     (paths resolve inside -ckpt-dir;
//	                                     disabled unless -ckpt-dir is set)
//	POST /v1/maxcut                      one Max-Cut solve
//
// Every served value is bitwise identical to the direct single-caller
// evaluation of that request alone — coalescing is invisible in results.
// Shutdown is graceful: SIGINT/SIGTERM stops accepting HTTP, finishes
// in-flight requests, then drains the per-model queues.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/serve"
)

// modelFlags collects repeated -model name=path pairs.
type modelFlags []struct{ name, path string }

func (m *modelFlags) String() string { return fmt.Sprintf("%d models", len(*m)) }

func (m *modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("vqmcd: ")
	var models modelFlags
	var (
		addr       = flag.String("addr", ":8089", "listen address")
		demo       = flag.Bool("demo", false, "register a demo MADE model named \"demo\" with a random TIM Hamiltonian")
		n          = flag.Int("n", 16, "demo model sites")
		hidden     = flag.Int("hidden", 32, "demo model hidden width")
		seed       = flag.Uint64("seed", 1, "demo model parameter seed")
		window     = flag.Duration("window", 0, "coalescing window (0: default 100us)")
		maxBatch   = flag.Int("max-batch", 0, "max rows per coalesced dispatch (0: default 1024)")
		maxPending = flag.Int("max-pending", 0, "admission bound, rows queued+in-flight (0: default 4096)")
		workers    = flag.Int("workers", 0, "eval workers per dispatch (0: GOMAXPROCS)")
		maxSolves  = flag.Int("max-solves", 0, "concurrent Max-Cut solves (0: default 4)")
		maxCutN    = flag.Int("maxcut-n", 0, "max vertices per served Max-Cut instance (0: default 4096)")
		ckptDir    = flag.String("ckpt-dir", "", "directory hot-swap checkpoints load from (empty: swap endpoint disabled)")
	)
	flag.Var(&models, "model", "serve a checkpoint as name=path (repeatable)")
	flag.Parse()

	if !*demo && len(models) == 0 {
		log.Fatal("nothing to serve: pass -demo or at least one -model name=path")
	}
	mcfg := serve.Config{
		MaxBatch:   *maxBatch,
		Window:     *window,
		MaxPending: *maxPending,
		Workers:    *workers,
	}
	s := serve.NewServer(serve.ServerConfig{
		MaxSolves:     *maxSolves,
		MaxCutNodes:   *maxCutN,
		CheckpointDir: *ckptDir,
	})
	if *demo {
		r := rng.New(*seed)
		ham := hamiltonian.RandomTIM(*n, r)
		wf := nn.NewMADE(*n, *hidden, r.Split())
		if err := s.Register("demo", serve.ModelSpec{WF: wf, Ham: ham, Config: mcfg}); err != nil {
			log.Fatal(err)
		}
		log.Printf("registered demo MADE n=%d hidden=%d seed=%d", *n, *hidden, *seed)
	}
	for _, m := range models {
		wf, err := nn.LoadFile(m.path)
		if err != nil {
			log.Fatalf("load %s: %v", m.path, err)
		}
		if err := s.Register(m.name, serve.ModelSpec{WF: wf, Config: mcfg}); err != nil {
			log.Fatal(err)
		}
		log.Printf("registered %s (%s, %d sites) from %s", m.name, nn.KindName(wf), wf.NumSites(), m.path)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Addr: *addr, Handler: serve.NewHandler(s)}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case <-ctx.Done():
		log.Print("shutting down")
	case err := <-errCh:
		log.Fatal(err)
	}
	// Stop accepting connections and finish in-flight HTTP requests first,
	// then drain the per-model dispatch queues.
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	s.Close()
	log.Print("drained")
}
