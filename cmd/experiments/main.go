// Command experiments regenerates the paper's tables and figures.
//
//	experiments -list
//	experiments -id table1
//	experiments -id all -preset ci -csv out/
//
// Presets: "ci" (default; minutes on a laptop), "paper" (the paper's full
// parameters; days without the original GPU cluster), "smoke" (seconds).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/vqmc-scale/parvqmc/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		id     = flag.String("id", "", "experiment id (or 'all')")
		preset = flag.String("preset", "ci", "scale preset: paper, ci or smoke")
		csvDir = flag.String("csv", "results", "directory for CSV artifacts ('' = skip)")
		list   = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list || *id == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *id == "" {
			fmt.Println("\nrun with -id <id> or -id all")
		}
		return
	}

	p, err := experiments.PresetByName(*preset)
	if err != nil {
		log.Fatal(err)
	}

	if *id == "all" {
		for _, e := range experiments.All() {
			if err := experiments.Run(e.ID, p, os.Stdout, *csvDir); err != nil {
				log.Fatalf("%s: %v", e.ID, err)
			}
			fmt.Println()
		}
		return
	}
	if err := experiments.Run(*id, p, os.Stdout, *csvDir); err != nil {
		log.Fatal(err)
	}
}
