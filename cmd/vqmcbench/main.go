// Command vqmcbench times the scalar (per-sample) evaluation path against
// the batched GEMM path and writes the results as JSON, giving the repo a
// recorded perf trajectory across PRs (BENCH_pr4.json, BENCH_pr5.json,
// BENCH_pr7.json, BENCH_pr8.json, BENCH_pr9.json). The two paths are
// bitwise identical, so every comparison is pure throughput.
//
//	vqmcbench -out BENCH_pr8.json                  # acceptance point, n=32 h=64 B=1024
//	vqmcbench -quick -out /tmp/smoke.json          # CI smoke (seconds)
//	vqmcbench -model rbm -quick                    # RBM batched-path smoke
//	vqmcbench -model nade -quick                   # NADE batched-path smoke
//	GOMAXPROCS=4 vqmcbench -model all -workers 1,2,4   # worker-scaling matrix
//	vqmcbench -mttr -out BENCH_pr9.json            # elastic repair: replace vs shrink at L=4
//	vqmcbench -serve -out BENCH_pr10.json          # serving: coalesced vs per-request dispatch
//	vqmcbench -serve -quick -out /tmp/smoke.json   # serve CI smoke (seconds)
//
// A -workers sweep emits one JSON row per (phase, model, worker count), and
// every row records the gomaxprocs/num_cpu it ran under, so scaling curves
// in a committed report are self-describing even when rows were produced on
// different boxes or under different GOMAXPROCS pins.
//
// For the autoregressive families the report also carries the tail-only
// acceptance ratio: the "LocalEnergiesTailVsPR4" (MADE) and
// "LocalEnergiesTailVsFull" (NADE, RNN) rows time the full-recompute flip
// reference — bitwise the same values — against the tail-only path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/dist"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// Result is one scalar-vs-batched (or reference-vs-tail) comparison.
type Result struct {
	Name    string `json:"name"`
	Model   string `json:"model"`
	N       int    `json:"n"`
	Hidden  int    `json:"hidden"`
	Batch   int    `json:"batch"`
	Workers int    `json:"workers"`
	// GOMAXPROCS and NumCPU are recorded per row (not just per report) so a
	// worker-scaling row names the parallelism budget it actually ran under.
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	ScalarNS   float64 `json:"scalar_ns_op"`
	BatchedNS  float64 `json:"batched_ns_op"`
	Speedup    float64 `json:"speedup"`
}

// Report is the emitted JSON document.
type Report struct {
	PR         string     `json:"pr"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	NumCPU     int        `json:"num_cpu"`
	GoVersion  string     `json:"go_version"`
	Note       string     `json:"note"`
	Results    []Result   `json:"results,omitempty"`
	Serve      []ServeRow `json:"serve,omitempty"`
}

// timeIt runs fn repeatedly until minDur elapses (at least once) and
// returns ns per call.
func timeIt(minDur time.Duration, fn func()) float64 {
	fn() // warm-up
	var calls int
	start := time.Now()
	for time.Since(start) < minDur {
		fn()
		calls++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(calls)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("vqmcbench: ")
	var (
		n       = flag.Int("n", 32, "TIM sites")
		hsz     = flag.Int("hidden", 64, "hidden width")
		batch   = flag.Int("batch", 1024, "batch size")
		model   = flag.String("model", "made", "wavefunction families to time: made, rbm, nade, rnn or all")
		workers = flag.String("workers", "", "comma-separated worker counts (default: 1 and GOMAXPROCS)")
		minMS   = flag.Int("min-ms", 2000, "minimum measurement time per case, milliseconds")
		quick   = flag.Bool("quick", false, "CI smoke: tiny sizes, one short measurement per case")
		mttr    = flag.Bool("mttr", false, "time elastic repair instead: replace (Recover) vs shrink-to-survivors at L=4 on a scripted failure")
		srv     = flag.Bool("serve", false, "load-test the inference service instead: coalesced vs per-request dispatch, responses verified bitwise")
		out     = flag.String("out", "BENCH_pr8.json", "output JSON path")
	)
	flag.Parse()

	if *quick {
		*n, *hsz, *batch, *minMS = 10, 12, 64, 1
	}
	if *srv {
		// The serve load harness defaults to the serving-regime model size
		// (16 sites, hidden 32: request overhead and eval cost comparable,
		// where coalescing is decision-relevant) rather than the GEMM
		// bench's larger -n/-hidden defaults; explicit flags still win.
		sn, sh := 16, 32
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "n":
				sn = *n
			case "hidden":
				sh = *hsz
			}
		})
		if *quick {
			sn, sh = *n, *hsz
		}
		runServe(sn, sh, *quick, *out)
		return
	}
	if *mttr {
		runMTTR(*n, *hsz, *batch, time.Duration(*minMS)*time.Millisecond, *out)
		return
	}
	runMADE := *model == "made" || *model == "all"
	runRBM := *model == "rbm" || *model == "all"
	runNADE := *model == "nade" || *model == "all"
	runRNN := *model == "rnn" || *model == "all"
	if !runMADE && !runRBM && !runNADE && !runRNN {
		log.Fatalf("unknown -model %q (want made, rbm, nade, rnn or all)", *model)
	}
	wlist := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		wlist = append(wlist, p)
	}
	if *workers != "" {
		wlist = nil
		for _, tok := range strings.Split(*workers, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || w < 1 {
				log.Fatalf("bad -workers entry %q", tok)
			}
			wlist = append(wlist, w)
		}
	}
	minDur := time.Duration(*minMS) * time.Millisecond
	maxW := 1
	for _, w := range wlist {
		if w > maxW {
			maxW = w
		}
	}

	rep := Report{
		PR:         "pr8-worker-scaling",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Note: "scalar vs batched ns per call; paths are bitwise identical. " +
			"LocalEnergies/FillOws are per batch, AutoSample per batch, TrainStep per iteration. " +
			"LocalEnergiesTailVsPR4 (MADE) and LocalEnergiesTailVsFull (NADE, RNN) time the " +
			"full-recompute flip reference against the tail-only super-batch. " +
			"Rows carry their own gomaxprocs/num_cpu; compare rows at equal names across " +
			"workers for scaling curves.",
	}
	if ncpu := runtime.NumCPU(); ncpu < maxW {
		// A worker sweep wider than the physical core count cannot show
		// real scaling; say so in the record instead of letting flat curves
		// read as a parallelization bug.
		rep.Note += fmt.Sprintf(" BOTTLENECK: this box exposes only %d CPU(s) for a max worker count of %d;"+
			" rows with workers > num_cpu time-slice on the same core(s), so their ratios measure"+
			" scheduling overhead, not multi-core scaling.", ncpu, maxW)
		log.Printf("note: num_cpu=%d < max workers=%d; scaling ratios are scheduler-bound", ncpu, maxW)
	}

	emit := func(r Result) {
		r.GOMAXPROCS = runtime.GOMAXPROCS(0)
		r.NumCPU = runtime.NumCPU()
		rep.Results = append(rep.Results, r)
		fmt.Printf("%-24s %-4s n=%d h=%d B=%d w=%d procs=%d: %8.2fms vs %8.2fms (%.2fx)\n",
			r.Name, r.Model, r.N, r.Hidden, r.Batch, r.Workers, r.GOMAXPROCS,
			r.ScalarNS/1e6, r.BatchedNS/1e6, r.Speedup)
	}

	for _, w := range wlist {
		if runMADE {
			benchMADE(emit, *n, *hsz, *batch, w, minDur)
		}
		if runRBM {
			benchRBM(emit, *n, *hsz, *batch, w, minDur)
		}
		if runNADE {
			benchAutoreg(emit, "nade", func(r *rng.Rand) autoregModel {
				return nn.NewNADE(*n, *hsz, r)
			}, *n, *hsz, *batch, w, minDur)
		}
		if runRNN {
			benchAutoreg(emit, "rnn", func(r *rng.Rand) autoregModel {
				return nn.NewRNN(*n, *hsz, r)
			}, *n, *hsz, *batch, w, minDur)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// benchMADE times the MADE scalar-vs-batched phases plus the tail-only
// acceptance ratio against the full-recompute flip reference.
func benchMADE(emit func(Result), n, hsz, batch, w int, minDur time.Duration) {
	r := rng.New(1)
	tim := hamiltonian.RandomTIM(n, r)
	m := nn.NewMADE(n, hsz, r.Split())
	b := sampler.NewBatch(batch, n)
	r.FillBits(b.Bits)
	out1 := make([]float64, batch)
	bev := core.NewBatchedEval(m, core.EvalAuto, w)
	full := core.NewBatchedEvalWith(m.NewFullFlipBatchEvaluator(w))

	sNS := timeIt(minDur, func() { core.LocalEnergies(tim, m, b, w, out1) })
	bNS := timeIt(minDur, func() { bev.LocalEnergies(tim, b, w, out1) })
	emit(Result{Name: "LocalEnergies", Model: "made", N: n, Hidden: hsz,
		Batch: batch, Workers: w, ScalarNS: sNS, BatchedNS: bNS, Speedup: sNS / bNS})

	fNS := timeIt(minDur, func() { full.LocalEnergies(tim, b, w, out1) })
	emit(Result{Name: "LocalEnergiesTailVsPR4", Model: "made", N: n, Hidden: hsz,
		Batch: batch, Workers: w, ScalarNS: fNS, BatchedNS: bNS, Speedup: fNS / bNS})

	ows := tensor.NewBatch(batch, m.NumParams())
	evals := make([]nn.GradEvaluator, w)
	for i := range evals {
		evals[i] = m.NewGradEvaluator()
	}
	sNS = timeIt(minDur, func() { core.FillOws(evals, b, ows, w) })
	bNS = timeIt(minDur, func() { bev.FillOws(b, ows) })
	emit(Result{Name: "FillOws", Model: "made", N: n, Hidden: hsz,
		Batch: batch, Workers: w, ScalarNS: sNS, BatchedNS: bNS, Speedup: sNS / bNS})

	sSmp := sampler.NewAutoMADE(m, true, w, rng.New(7))
	bSmp := sampler.NewAutoBatched(n, m, w, rng.New(7))
	sNS = timeIt(minDur, func() { sSmp.Sample(b) })
	bNS = timeIt(minDur, func() { bSmp.Sample(b) })
	emit(Result{Name: "AutoSample", Model: "made", N: n, Hidden: hsz,
		Batch: batch, Workers: w, ScalarNS: sNS, BatchedNS: bNS, Speedup: sNS / bNS})

	mkTrainer := func(mode core.EvalMode) *core.Trainer {
		mm := nn.NewMADE(n, hsz, rng.New(9))
		var smp sampler.Sampler
		if mode == core.EvalScalar {
			smp = sampler.NewAutoMADE(mm, true, w, rng.New(10))
		} else {
			smp = sampler.NewAutoBatched(n, mm, w, rng.New(10))
		}
		return core.New(tim, mm, smp, optimizer.NewAdam(0.01),
			core.Config{BatchSize: batch, Workers: w, Eval: mode})
	}
	trS, trB := mkTrainer(core.EvalScalar), mkTrainer(core.EvalAuto)
	sNS = timeIt(minDur, func() { trS.Step() })
	bNS = timeIt(minDur, func() { trB.Step() })
	emit(Result{Name: "TrainStep", Model: "made", N: n, Hidden: hsz,
		Batch: batch, Workers: w, ScalarNS: sNS, BatchedNS: bNS, Speedup: sNS / bNS})
}

// autoregModel is the interface benchAutoreg needs from an autoregressive
// family: every scalar surface the trainer uses plus the three batched
// builders (evaluator, full-recompute flip oracle, ancestral sampler).
type autoregModel interface {
	core.Model
	nn.GradEvaluatorBuilder
	nn.BatchEvaluatorBuilder
	nn.FullFlipBatchEvaluatorBuilder
	nn.BatchAncestralBuilder
	NewIncrementalEvaluator() nn.ConditionalEvaluator
}

// benchAutoreg times an autoregressive family (NADE, RNN) through the same
// phases as benchMADE: local energies (scalar vs tail-only batched, plus
// the full-recompute reference vs tail-only ratio), O_k rows, ancestral
// sampling, and a whole training step.
func benchAutoreg(emit func(Result), name string, mk func(r *rng.Rand) autoregModel,
	n, hsz, batch, w int, minDur time.Duration) {
	r := rng.New(31)
	tim := hamiltonian.RandomTIM(n, r)
	m := mk(r.Split())
	b := sampler.NewBatch(batch, n)
	r.FillBits(b.Bits)
	out1 := make([]float64, batch)
	bev := core.NewBatchedEval(m, core.EvalAuto, w)
	full := core.NewBatchedEvalWith(m.NewFullFlipBatchEvaluator(w))

	sNS := timeIt(minDur, func() { core.LocalEnergies(tim, m, b, w, out1) })
	bNS := timeIt(minDur, func() { bev.LocalEnergies(tim, b, w, out1) })
	emit(Result{Name: "LocalEnergies", Model: name, N: n, Hidden: hsz,
		Batch: batch, Workers: w, ScalarNS: sNS, BatchedNS: bNS, Speedup: sNS / bNS})

	fNS := timeIt(minDur, func() { full.LocalEnergies(tim, b, w, out1) })
	emit(Result{Name: "LocalEnergiesTailVsFull", Model: name, N: n, Hidden: hsz,
		Batch: batch, Workers: w, ScalarNS: fNS, BatchedNS: bNS, Speedup: fNS / bNS})

	ows := tensor.NewBatch(batch, m.NumParams())
	evals := make([]nn.GradEvaluator, w)
	for i := range evals {
		evals[i] = m.NewGradEvaluator()
	}
	sNS = timeIt(minDur, func() { core.FillOws(evals, b, ows, w) })
	bNS = timeIt(minDur, func() { bev.FillOws(b, ows) })
	emit(Result{Name: "FillOws", Model: name, N: n, Hidden: hsz,
		Batch: batch, Workers: w, ScalarNS: sNS, BatchedNS: bNS, Speedup: sNS / bNS})

	sSmp := sampler.NewAuto(n, m.NewIncrementalEvaluator, w, rng.New(37))
	bSmp := sampler.NewAutoBatched(n, m, w, rng.New(37))
	sNS = timeIt(minDur, func() { sSmp.Sample(b) })
	bNS = timeIt(minDur, func() { bSmp.Sample(b) })
	emit(Result{Name: "AutoSample", Model: name, N: n, Hidden: hsz,
		Batch: batch, Workers: w, ScalarNS: sNS, BatchedNS: bNS, Speedup: sNS / bNS})

	mkTrainer := func(mode core.EvalMode) *core.Trainer {
		mm := mk(rng.New(39))
		var smp sampler.Sampler
		if mode == core.EvalScalar {
			smp = sampler.NewAuto(n, mm.NewIncrementalEvaluator, w, rng.New(40))
		} else {
			smp = sampler.NewAutoBatched(n, mm, w, rng.New(40))
		}
		return core.New(tim, mm, smp, optimizer.NewAdam(0.01),
			core.Config{BatchSize: batch, Workers: w, Eval: mode})
	}
	trS, trB := mkTrainer(core.EvalScalar), mkTrainer(core.EvalAuto)
	sNS = timeIt(minDur, func() { trS.Step() })
	bNS = timeIt(minDur, func() { trB.Step() })
	emit(Result{Name: "TrainStep", Model: name, N: n, Hidden: hsz,
		Batch: batch, Workers: w, ScalarNS: sNS, BatchedNS: bNS, Speedup: sNS / bNS})
}

// benchRBM times the RBM scalar-vs-batched phases on the MCMC pipeline
// (the theta/bias GEMM win of the BatchEvaluator contract extension).
func benchRBM(emit func(Result), n, hsz, batch, w int, minDur time.Duration) {
	r := rng.New(21)
	tim := hamiltonian.RandomTIM(n, r)
	m := nn.NewRBM(n, hsz, r.Split())
	b := sampler.NewBatch(batch, n)
	r.FillBits(b.Bits)
	out1 := make([]float64, batch)
	bev := core.NewBatchedEval(m, core.EvalAuto, w)

	sNS := timeIt(minDur, func() { core.LocalEnergies(tim, m, b, w, out1) })
	bNS := timeIt(minDur, func() { bev.LocalEnergies(tim, b, w, out1) })
	emit(Result{Name: "LocalEnergies", Model: "rbm", N: n, Hidden: hsz,
		Batch: batch, Workers: w, ScalarNS: sNS, BatchedNS: bNS, Speedup: sNS / bNS})

	ows := tensor.NewBatch(batch, m.NumParams())
	evals := make([]nn.GradEvaluator, w)
	for i := range evals {
		evals[i] = m.NewGradEvaluator()
	}
	sNS = timeIt(minDur, func() { core.FillOws(evals, b, ows, w) })
	bNS = timeIt(minDur, func() { bev.FillOws(b, ows) })
	emit(Result{Name: "FillOws", Model: "rbm", N: n, Hidden: hsz,
		Batch: batch, Workers: w, ScalarNS: sNS, BatchedNS: bNS, Speedup: sNS / bNS})

	mkTrainer := func(mode core.EvalMode) *core.Trainer {
		mm := nn.NewRBM(n, hsz, rng.New(23))
		smp := sampler.NewMCMC(mm, sampler.MCMCConfig{}, rng.New(24))
		return core.New(tim, mm, smp, optimizer.NewAdam(0.01),
			core.Config{BatchSize: batch, Workers: w, Eval: mode})
	}
	trS, trB := mkTrainer(core.EvalScalar), mkTrainer(core.EvalAuto)
	sNS = timeIt(minDur, func() { trS.Step() })
	bNS = timeIt(minDur, func() { trB.Step() })
	emit(Result{Name: "TrainStep", Model: "rbm", N: n, Hidden: hsz,
		Batch: batch, Workers: w, ScalarNS: sNS, BatchedNS: bNS, Speedup: sNS / bNS})
}

// runMTTR times the two elastic repair strategies after a scripted rank
// death on an L=4 MADE/REINFORCE trainer: replace (dist.Recover — rebuild
// the dead rank from a checkpoint and resume bit-identically at full width)
// against shrink (dist.Shrink — continue on the three survivors as a legal
// smaller run). Each sample covers repair plus the replay of the failed
// step: the full wall-clock gap between "step failed" and "training is
// moving again", i.e. the mean time to repair. In the emitted row ScalarNS
// is replace, BatchedNS is shrink, and Speedup is their ratio (how much
// more a replacement costs than walking away from the rank).
func runMTTR(n, hsz, batch int, minDur time.Duration, out string) {
	const L = 4
	const failStep = 4
	mb := batch / L
	if mb < 1 {
		mb = 1
	}
	tim := hamiltonian.RandomTIM(n, rng.New(77))

	builder := func(rank int, model dist.Model) (dist.Replica, error) {
		m := model.(*nn.MADE)
		return dist.Replica{
			Model: m,
			Smp:   sampler.NewAutoMADE(m, true, 1, rng.New(0xDEAD)),
			Opt:   optimizer.NewSGD(1), // replaced by the survivor clone
		}, nil
	}
	makeBroken := func() *dist.Trainer {
		streams := rng.New(7).SplitN(L)
		reps := make([]dist.Replica, L)
		for r := range reps {
			m := nn.NewMADE(n, hsz, rng.New(6))
			reps[r] = dist.Replica{
				Model: m,
				Smp:   sampler.NewAutoMADE(m, true, 1, streams[r]),
				Opt:   optimizer.NewAdam(0.01),
			}
		}
		tr, err := dist.New(tim, reps, mb)
		if err != nil {
			log.Fatal(err)
		}
		// Peer loss surfaces via the bounded-wait deadline; detection happens
		// before the measured repair window opens, so the value is uncritical.
		tr.SetCollectiveDeadline(500 * time.Millisecond)
		tr.InjectFailure(1, failStep-1) // one collective per rank per step
		for i := 1; i < failStep; i++ {
			if _, err := tr.Step(i); err != nil {
				log.Fatalf("healthy prefix step %d: %v", i, err)
			}
		}
		if _, err := tr.Step(failStep); err == nil {
			log.Fatal("scripted failure did not fire")
		}
		return tr
	}
	// Unlike timeIt, only the repair + replay stretch is on the clock; the
	// broken-trainer setup (training steps) is rebuilt outside it per sample.
	measure := func(repair func(*dist.Trainer) (*dist.Trainer, error)) float64 {
		var total time.Duration
		calls := 0
		for total < minDur || calls == 0 {
			tr := makeBroken()
			start := time.Now()
			nt, err := repair(tr)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := nt.Step(failStep); err != nil {
				log.Fatalf("replaying failed step: %v", err)
			}
			total += time.Since(start)
			calls++
		}
		return float64(total.Nanoseconds()) / float64(calls)
	}

	replaceNS := measure(func(tr *dist.Trainer) (*dist.Trainer, error) {
		return tr.Recover("", builder)
	})
	shrinkNS := measure(func(tr *dist.Trainer) (*dist.Trainer, error) {
		return tr.Shrink()
	})

	rep := Report{
		PR:         "pr9-elastic-mttr",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Note: "mean time to repair after a scripted rank death at L=4 (MADE, REINFORCE): " +
			"scalar_ns_op = replace (Recover: in-memory checkpoint, rebuild dead rank, replay failed step), " +
			"batched_ns_op = shrink (continue on 3 survivors, replay failed step), " +
			"speedup = replace/shrink cost ratio. Repair + replay only; setup excluded.",
	}
	row := Result{Name: "MTTR", Model: "made", N: n, Hidden: hsz, Batch: L * mb, Workers: 1,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		ScalarNS: replaceNS, BatchedNS: shrinkNS, Speedup: replaceNS / shrinkNS}
	rep.Results = append(rep.Results, row)
	fmt.Printf("%-24s %-4s n=%d h=%d B=%d L=%d: replace %8.2fms vs shrink %8.2fms (%.2fx)\n",
		row.Name, row.Model, row.N, row.Hidden, row.Batch, L,
		row.ScalarNS/1e6, row.BatchedNS/1e6, row.Speedup)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
