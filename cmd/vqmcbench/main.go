// Command vqmcbench times the scalar (per-sample) evaluation path against
// the batched GEMM path and writes the results as JSON, giving the repo a
// recorded perf trajectory across PRs (BENCH_pr4.json). The two paths are
// bitwise identical, so every comparison is pure throughput.
//
//	vqmcbench -out BENCH_pr4.json                  # acceptance point, n=32 h=64 B=1024
//	vqmcbench -quick -out /tmp/smoke.json          # CI smoke (seconds)
//	vqmcbench -workers 1,4,8                       # worker sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// Result is one scalar-vs-batched comparison.
type Result struct {
	Name      string  `json:"name"`
	N         int     `json:"n"`
	Hidden    int     `json:"hidden"`
	Batch     int     `json:"batch"`
	Workers   int     `json:"workers"`
	ScalarNS  float64 `json:"scalar_ns_op"`
	BatchedNS float64 `json:"batched_ns_op"`
	Speedup   float64 `json:"speedup"`
}

// Report is the emitted JSON document.
type Report struct {
	PR         string   `json:"pr"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	GoVersion  string   `json:"go_version"`
	Note       string   `json:"note"`
	Results    []Result `json:"results"`
}

// timeIt runs fn repeatedly until minDur elapses (at least once) and
// returns ns per call.
func timeIt(minDur time.Duration, fn func()) float64 {
	fn() // warm-up
	var calls int
	start := time.Now()
	for time.Since(start) < minDur {
		fn()
		calls++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(calls)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("vqmcbench: ")
	var (
		n       = flag.Int("n", 32, "TIM sites")
		hsz     = flag.Int("hidden", 64, "MADE hidden width")
		batch   = flag.Int("batch", 1024, "batch size")
		workers = flag.String("workers", "", "comma-separated worker counts (default: 1 and GOMAXPROCS)")
		minMS   = flag.Int("min-ms", 2000, "minimum measurement time per case, milliseconds")
		quick   = flag.Bool("quick", false, "CI smoke: tiny sizes, one short measurement per case")
		out     = flag.String("out", "BENCH_pr4.json", "output JSON path")
	)
	flag.Parse()

	if *quick {
		*n, *hsz, *batch, *minMS = 10, 12, 64, 1
	}
	wlist := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		wlist = append(wlist, p)
	}
	if *workers != "" {
		wlist = nil
		for _, tok := range strings.Split(*workers, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || w < 1 {
				log.Fatalf("bad -workers entry %q", tok)
			}
			wlist = append(wlist, w)
		}
	}
	minDur := time.Duration(*minMS) * time.Millisecond

	rep := Report{
		PR:         "pr4-batched-gemm-eval",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Note: "scalar vs batched ns per call; paths are bitwise identical. " +
			"LocalEnergies/FillOws are per batch, AutoSample per batch, TrainStep per iteration.",
	}

	for _, w := range wlist {
		r := rng.New(1)
		tim := hamiltonian.RandomTIM(*n, r)
		m := nn.NewMADE(*n, *hsz, r.Split())
		b := sampler.NewBatch(*batch, *n)
		r.FillBits(b.Bits)
		out1 := make([]float64, *batch)
		bev := core.NewBatchedEval(m, core.EvalAuto, w)

		sNS := timeIt(minDur, func() { core.LocalEnergies(tim, m, b, w, out1) })
		bNS := timeIt(minDur, func() { bev.LocalEnergies(tim, b, w, out1) })
		rep.Results = append(rep.Results, Result{Name: "LocalEnergies", N: *n, Hidden: *hsz,
			Batch: *batch, Workers: w, ScalarNS: sNS, BatchedNS: bNS, Speedup: sNS / bNS})
		fmt.Printf("LocalEnergies  n=%d h=%d B=%d w=%d: scalar %.2fms batched %.2fms (%.2fx)\n",
			*n, *hsz, *batch, w, sNS/1e6, bNS/1e6, sNS/bNS)

		ows := tensor.NewBatch(*batch, m.NumParams())
		evals := make([]nn.GradEvaluator, w)
		for i := range evals {
			evals[i] = m.NewGradEvaluator()
		}
		sNS = timeIt(minDur, func() { core.FillOws(evals, b, ows, w) })
		bNS = timeIt(minDur, func() { bev.FillOws(b, ows) })
		rep.Results = append(rep.Results, Result{Name: "FillOws", N: *n, Hidden: *hsz,
			Batch: *batch, Workers: w, ScalarNS: sNS, BatchedNS: bNS, Speedup: sNS / bNS})
		fmt.Printf("FillOws        n=%d h=%d B=%d w=%d: scalar %.2fms batched %.2fms (%.2fx)\n",
			*n, *hsz, *batch, w, sNS/1e6, bNS/1e6, sNS/bNS)

		sSmp := sampler.NewAutoMADE(m, true, w, rng.New(7))
		bSmp := sampler.NewAutoBatched(*n, m, w, rng.New(7))
		sNS = timeIt(minDur, func() { sSmp.Sample(b) })
		bNS = timeIt(minDur, func() { bSmp.Sample(b) })
		rep.Results = append(rep.Results, Result{Name: "AutoSample", N: *n, Hidden: *hsz,
			Batch: *batch, Workers: w, ScalarNS: sNS, BatchedNS: bNS, Speedup: sNS / bNS})
		fmt.Printf("AutoSample     n=%d h=%d B=%d w=%d: scalar %.2fms batched %.2fms (%.2fx)\n",
			*n, *hsz, *batch, w, sNS/1e6, bNS/1e6, sNS/bNS)

		mkTrainer := func(mode core.EvalMode) *core.Trainer {
			mm := nn.NewMADE(*n, *hsz, rng.New(9))
			var smp sampler.Sampler
			if mode == core.EvalScalar {
				smp = sampler.NewAutoMADE(mm, true, w, rng.New(10))
			} else {
				smp = sampler.NewAutoBatched(*n, mm, w, rng.New(10))
			}
			return core.New(tim, mm, smp, optimizer.NewAdam(0.01),
				core.Config{BatchSize: *batch, Workers: w, Eval: mode})
		}
		trS, trB := mkTrainer(core.EvalScalar), mkTrainer(core.EvalAuto)
		sNS = timeIt(minDur, func() { trS.Step() })
		bNS = timeIt(minDur, func() { trB.Step() })
		rep.Results = append(rep.Results, Result{Name: "TrainStep", N: *n, Hidden: *hsz,
			Batch: *batch, Workers: w, ScalarNS: sNS, BatchedNS: bNS, Speedup: sNS / bNS})
		fmt.Printf("TrainStep      n=%d h=%d B=%d w=%d: scalar %.2fms batched %.2fms (%.2fx)\n",
			*n, *hsz, *batch, w, sNS/1e6, bNS/1e6, sNS/bNS)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
