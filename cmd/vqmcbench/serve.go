package main

// The -serve mode load-tests the internal/serve coalescer: for each
// endpoint kind and client count it runs the same closed-loop measurement
// twice — once with cross-request coalescing enabled and once with
// MaxBatch=1 (every request dispatched through its own GEMM call) — and
// reports the QPS ratio. Every response in both runs is verified bitwise
// against the direct single-caller evaluation, so the numbers come with a
// correctness proof attached (LoadResult.Verified counts the checks).

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/serve"
)

// ServeRow is one serve load measurement: a (kind, clients, coalesced)
// cell. Speedup is coalesced QPS over the matching per-request QPS and is
// recorded on the coalesced row of each pair.
type ServeRow struct {
	Kind         string  `json:"kind"`
	Clients      int     `json:"clients"`
	Coalesced    bool    `json:"coalesced"`
	Requests     int     `json:"requests"`
	QPS          float64 `json:"qps"`
	P50ms        float64 `json:"p50_ms"`
	P95ms        float64 `json:"p95_ms"`
	P99ms        float64 `json:"p99_ms"`
	Batches      uint64  `json:"batches"`
	RowsPerBatch float64 `json:"rows_per_batch"`
	Verified     int     `json:"verified"`
	Speedup      float64 `json:"speedup,omitempty"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	NumCPU       int     `json:"num_cpu"`
}

// runServe executes the serve load matrix and writes the report.
func runServe(n, hsz int, quick bool, out string) {
	clientCounts := []int{16, 64, 256}
	dur := time.Second
	if quick {
		clientCounts = []int{4, 16}
		dur = 150 * time.Millisecond
	}

	rep := Report{
		PR:         "pr10-serve-coalescing",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Note: "closed-loop serve load: coalesced (cross-request batch fold, default window) vs " +
			"per-request (MaxBatch=1, never wait) dispatch on the same MADE model; every response " +
			"in every run is verified bitwise against the direct single-caller evaluation " +
			"(verified = checks performed). speedup on a coalesced row is its QPS over the " +
			"matching per-request row. The fold pays off with concurrency: at low client counts " +
			"the batch window is idle latency and per-request dispatch wins; at high client " +
			"counts the fused GEMM over strangers' rows beats one dispatch per request.",
	}

	for _, kind := range []string{"logpsi", "energy"} {
		for _, clients := range clientCounts {
			var perReqQPS float64
			for _, coalesce := range []bool{false, true} {
				// Serving churns request-sized garbage; start each
				// measurement from a collected heap so earlier runs'
				// debris doesn't tax later ones.
				runtime.GC()
				res, err := serve.RunLoad(serve.LoadConfig{
					Sites:    n,
					Hidden:   hsz,
					Clients:  clients,
					Duration: dur,
					Kind:     kind,
					Coalesce: coalesce,
					Seed:     42,
				})
				if err != nil {
					log.Fatalf("serve load %s clients=%d coalesce=%v: %v", kind, clients, coalesce, err)
				}
				row := ServeRow{
					Kind: kind, Clients: clients, Coalesced: coalesce,
					Requests: res.Requests, QPS: res.QPS,
					P50ms: res.P50ms, P95ms: res.P95ms, P99ms: res.P99ms,
					Batches: res.Batches, RowsPerBatch: res.RowsPerBatch,
					Verified:   res.Verified,
					GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
				}
				if coalesce {
					row.Speedup = res.QPS / perReqQPS
				} else {
					perReqQPS = res.QPS
				}
				rep.Serve = append(rep.Serve, row)
				mode := "per-request"
				if coalesce {
					mode = "coalesced  "
				}
				fmt.Printf("serve %-7s clients=%-4d %s: %9.0f qps  p50=%6.3fms p95=%6.3fms p99=%6.3fms  rows/batch=%6.1f  verified=%d",
					kind, clients, mode, res.QPS, res.P50ms, res.P95ms, res.P99ms, res.RowsPerBatch, res.Verified)
				if coalesce {
					fmt.Printf("  (%.2fx)", row.Speedup)
				}
				fmt.Println()
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
