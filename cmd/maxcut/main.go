// Command maxcut runs the classical Max-Cut solvers (random, Goemans-
// Williamson, Burer-Monteiro) and optionally the VQMC heuristic on the
// paper's random dense graphs, printing cuts and the SDP upper bound.
//
//	maxcut -n 100 -methods random,gw,bm
//	maxcut -n 50 -methods bm,vqmc -seeds 5
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"github.com/vqmc-scale/parvqmc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("maxcut: ")
	var (
		n       = flag.Int("n", 50, "graph size")
		seed    = flag.Uint64("seed", 1, "instance seed")
		methods = flag.String("methods", "random,gw,bm", "comma-separated: random, gw, bm, vqmc")
		seeds   = flag.Int("seeds", 1, "solver repetitions (reports best)")
		iters   = flag.Int("iters", 300, "VQMC iterations (vqmc method)")
		batch   = flag.Int("batch", 1024, "VQMC batch size (vqmc method)")
	)
	flag.Parse()

	p := parvqmc.MaxCut(*n, *seed)
	fmt.Printf("Max-Cut instance: n=%d, total edge weight %.0f (random-cut baseline ~%.1f)\n",
		*n, p.TotalEdgeWeight(), p.TotalEdgeWeight()/2)

	for _, m := range strings.Split(*methods, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		if m == "vqmc" {
			best := 0.0
			for s := 0; s < *seeds; s++ {
				res, err := parvqmc.Train(p, parvqmc.Options{
					Iterations: *iters, BatchSize: *batch, Seed: uint64(s + 1),
				})
				if err != nil {
					log.Fatal(err)
				}
				if res.Cut > best {
					best = res.Cut
				}
			}
			fmt.Printf("%-8s cut %.1f\n", "vqmc", best)
			continue
		}
		best := 0.0
		bound := 0.0
		for s := 0; s < *seeds; s++ {
			res, err := parvqmc.SolveMaxCutClassical(p, m, uint64(s+1))
			if err != nil {
				log.Fatal(err)
			}
			if res.Cut > best {
				best = res.Cut
			}
			if res.SDPBound > bound {
				bound = res.SDPBound
			}
		}
		if bound > 0 {
			fmt.Printf("%-8s cut %.1f (SDP bound %.1f)\n", m, best, bound)
		} else {
			fmt.Printf("%-8s cut %.1f\n", m, best)
		}
	}
}
