// Command exactdiag computes exact ground-state energies of the paper's
// Hamiltonians by matrix-free Lanczos (TIM) or exhaustive scan (Max-Cut),
// for validating VQMC results at small sizes.
//
//	exactdiag -problem tim -n 16
//	exactdiag -problem maxcut -n 20
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/vqmc-scale/parvqmc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("exactdiag: ")
	var (
		problem = flag.String("problem", "tim", "problem kind: tim or maxcut")
		n       = flag.Int("n", 12, "number of sites")
		seed    = flag.Uint64("seed", 1, "instance seed")
	)
	flag.Parse()

	var p *parvqmc.Problem
	switch *problem {
	case "tim":
		p = parvqmc.TIM(*n, *seed)
	case "maxcut":
		p = parvqmc.MaxCut(*n, *seed)
	default:
		log.Fatalf("unknown problem %q", *problem)
	}

	start := time.Now()
	e, err := p.ExactGroundEnergy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem       %s n=%d (dimension %d)\n", p.Kind(), *n, 1<<uint(*n))
	fmt.Printf("ground energy %.8f\n", e)
	if cut, ok := p.CutOf(e); ok {
		fmt.Printf("maximum cut   %.0f of total weight %.0f\n", cut, p.TotalEdgeWeight())
	}
	fmt.Printf("elapsed       %v\n", time.Since(start).Round(time.Millisecond))
}
