// QUBO: use VQMC with stochastic reconfiguration as a heuristic solver for
// a general quadratic unconstrained binary optimization problem — the
// family the paper's Section 2.4 reduces to ground-state search. On rugged
// random instances plain first-order optimizers trap in local optima; the
// natural gradient (SR) reliably escapes them, the effect the paper reports
// for Max-Cut.
//
//	go run ./examples/qubo
package main

import (
	"fmt"
	"log"

	"github.com/vqmc-scale/parvqmc"
)

func main() {
	const n = 18

	problem := parvqmc.RandomQUBO(n, 99)
	exact, err := problem.ExactGroundEnergy() // exhaustive scan, 2^18 states
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random QUBO with %d binary variables; exhaustive optimum %.4f\n\n", n, exact)

	for _, cfg := range []struct {
		name string
		opts parvqmc.Options
	}{
		{"Adam (first-order)", parvqmc.Options{
			BatchSize: 512, Iterations: 250, EvalBatch: 1024, Seed: 2,
		}},
		{"SGD + SR (natural)", parvqmc.Options{
			Optimizer: "sgd", StochasticReconfig: true,
			BatchSize: 512, Iterations: 250, EvalBatch: 1024, Seed: 2,
		}},
	} {
		res, err := parvqmc.Train(problem, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		gapBest := res.BestEnergy - exact
		fmt.Printf("%-20s mean %.4f   best sample %.4f   (gap to optimum %.4f)\n",
			cfg.name, res.Energy, res.BestEnergy, gapBest)
	}

	fmt.Println("\nThe best sampled configuration is a feasible assignment:")
	res, _ := parvqmc.Train(problem, parvqmc.Options{
		Optimizer: "sgd", StochasticReconfig: true,
		BatchSize: 512, Iterations: 250, EvalBatch: 1024, Seed: 2,
	})
	fmt.Println(res.BestConfig)
}
