// Quickstart: solve a 16-site transverse-field Ising ground-state problem
// (a 65,536-dimensional eigenproblem) with the paper's default pipeline —
// MADE wavefunction, exact autoregressive sampling, Adam — and validate
// against exact Lanczos diagonalization.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/vqmc-scale/parvqmc"
)

func main() {
	const n = 16

	problem := parvqmc.TIM(n, 7)
	fmt.Printf("TIM instance with %d sites: matrix dimension 2^%d = %d\n",
		n, n, 1<<n)

	result, err := parvqmc.Train(problem, parvqmc.Options{
		BatchSize:  512,
		Iterations: 300,
		EvalBatch:  1024,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("VQMC energy:  %.6f +- %.6f  (trained in %v)\n",
		result.Energy, result.Std, result.TrainTime.Round(1e6))

	exact, err := problem.ExactGroundEnergy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Exact energy: %.6f  (Lanczos over the full 2^%d space)\n", exact, n)
	fmt.Printf("Relative gap: %.4f%%\n", 100*(result.Energy-exact)/(-exact))

	// The std-dev of the local energy vanishes at an exact eigenstate
	// (Eq. 4 of the paper) — watch it shrink across training.
	first, last := result.Curve[0], result.Curve[len(result.Curve)-1]
	fmt.Printf("Std-dev of the stochastic objective: %.3f (iter 1) -> %.3f (iter %d)\n",
		first.Std, last.Std, last.Iteration)
}
