// TIM convergence study: reproduce the Figure 2 comparison at laptop scale.
// MADE with exact autoregressive sampling trains stably; RBM with
// random-walk Metropolis-Hastings needs burn-in every iteration and its
// energy estimates are noisier — the gap that motivates the paper.
//
//	go run ./examples/tim
package main

import (
	"fmt"
	"log"

	"github.com/vqmc-scale/parvqmc"
)

func main() {
	const (
		n     = 14
		iters = 200
	)
	problem := parvqmc.TIM(n, 21)
	exact, err := problem.ExactGroundEnergy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TIM n=%d, exact ground energy %.4f\n\n", n, exact)

	type setup struct {
		name string
		opts parvqmc.Options
	}
	setups := []setup{
		{"MADE&AUTO ", parvqmc.Options{
			Model: "made", BatchSize: 256, Iterations: iters, EvalBatch: 512, Seed: 1,
		}},
		{"RBM&MCMC  ", parvqmc.Options{
			Model: "rbm", BatchSize: 256, Iterations: iters, EvalBatch: 512, Seed: 1,
		}},
	}

	fmt.Printf("%-11s %-12s %-12s %-12s %-10s\n",
		"method", "E(iter 10)", "E(final)", "std(final)", "gap")
	for _, s := range setups {
		res, err := parvqmc.Train(problem, s.opts)
		if err != nil {
			log.Fatal(err)
		}
		e10 := res.Curve[9].Energy
		last := res.Curve[len(res.Curve)-1]
		fmt.Printf("%-11s %-12.4f %-12.4f %-12.4f %.4f%%\n",
			s.name, e10, last.Energy, last.Std,
			100*(res.Energy-exact)/(-exact))
	}

	fmt.Println("\nSampling cost (forward passes, the unit of the paper's Figure 1):")
	for _, s := range setups {
		res, err := parvqmc.Train(problem, s.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s %d\n", s.name, res.ForwardPasses)
	}
}
