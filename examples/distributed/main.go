// Distributed scaling: the paper's Figure 4 at laptop scale. With the
// per-device mini-batch fixed (mbs=4), adding devices grows the effective
// batch, which improves the converged energy until it saturates. Devices
// are goroutine replicas synchronized by a real ring all-reduce; the
// modeled V100 cluster then reports the weak-scaling times of Figure 3.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"github.com/vqmc-scale/parvqmc"
)

func main() {
	const (
		n     = 16
		mbs   = 4
		iters = 200
	)
	problem := parvqmc.TIM(n, 33)
	exact, err := problem.ExactGroundEnergy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TIM n=%d, exact ground energy %.4f\n", n, exact)
	fmt.Printf("Fixed per-device batch mbs=%d; effective batch = mbs x devices\n\n", mbs)
	fmt.Printf("%-9s %-14s %-12s %-10s\n", "devices", "eff. batch", "energy", "gap %")

	for _, devices := range []int{1, 2, 4, 8, 16} {
		res, err := parvqmc.TrainDistributed(problem, parvqmc.Options{
			Hidden:     32,
			Iterations: iters,
			EvalBatch:  1024,
			Seed:       5,
		}, devices, mbs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9d %-14d %-12.4f %.3f\n",
			devices, devices*mbs, res.Energy, 100*(res.Energy-exact)/(-exact))
	}

	fmt.Println("\nLarger effective batches explore the state space better, so the")
	fmt.Println("converged energy improves with the device count and saturates for")
	fmt.Println("small problems — the mechanism behind the paper's Figure 4.")

	// Distributed stochastic reconfiguration: the Fisher solve runs
	// matrix-free CG with one packed ring all-reduce per iteration, so the
	// O_k batch never leaves its replica. Each replica additionally fans
	// its local-energy and gradient evaluation across 2 workers — the
	// two-level replica x worker scheme modeling node x GPU clusters.
	fmt.Println("\nDistributed SR (natural gradient), 4 devices x 2 workers:")
	fmt.Printf("%-9s %-12s %-10s %-14s\n", "iters", "energy", "gap %", "mean CG iters")
	for _, iters := range []int{10, 25, 50} {
		res, err := parvqmc.TrainDistributed(problem, parvqmc.Options{
			Hidden:             32,
			Iterations:         iters,
			EvalBatch:          1024,
			Optimizer:          "sgd",
			StochasticReconfig: true,
			Workers:            2,
			Seed:               5,
		}, 4, 32)
		if err != nil {
			log.Fatal(err)
		}
		var cg float64
		for _, s := range res.Curve {
			cg += float64(s.SRIters)
		}
		cg /= float64(len(res.Curve))
		fmt.Printf("%-9d %-12.4f %-10.3f %.1f\n",
			iters, res.Energy, 100*(res.Energy-exact)/(-exact), cg)
	}
	fmt.Println("\nSR preconditions with the Fisher matrix estimated from the SAME")
	fmt.Println("distributed batch, converging in far fewer iterations; replica")
	fmt.Println("parameters remain bit-identical throughout.")

	// Pipelined SR: the same Fisher solve, but every per-CG-iteration ring
	// all-reduce is issued non-blocking and overlapped with the recurrence
	// updates (Gropp's variant, Options.SRSolver: "pipelined"). The energy
	// matches the classic solver — same Krylov process — while the solve
	// itself no longer blocks on any collective.
	fmt.Println("\nClassic vs pipelined SR solver (4 devices x 2 workers, 25 iters):")
	fmt.Printf("%-11s %-12s %-10s\n", "solver", "energy", "gap %")
	for _, solver := range []string{"cg", "pipelined"} {
		res, err := parvqmc.TrainDistributed(problem, parvqmc.Options{
			Hidden:             32,
			Iterations:         25,
			EvalBatch:          1024,
			Optimizer:          "sgd",
			StochasticReconfig: true,
			SRSolver:           solver,
			Workers:            2,
			Seed:               5,
		}, 4, 32)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %-12.4f %.3f\n", solver, res.Energy, 100*(res.Energy-exact)/(-exact))
	}
	fmt.Println("\nOn a latency-bound interconnect the pipelined solver moves every")
	fmt.Println("per-iteration reduction off the blocking path (overlapped with the")
	fmt.Println("CG recurrence updates) — run `go run ./cmd/experiments -id pipecg`")
	fmt.Println("for the measured blocking/async split and the overlap model.")
}
