// RBM + MCMC with batched evaluation: train the Carleo–Troyer RBM
// wavefunction on a 12-site transverse-field Ising chain, sampling with
// Metropolis-Hastings, and let the batched evaluator fuse the local-energy
// and gradient phases into blocked theta = S·Wᵀ GEMMs over the batch.
//
// The batched path (Options.BatchedEval, on by default) is bitwise
// identical to the per-sample path — the demo proves it by training the
// same seed both ways and comparing energies exactly — so switching it on
// is pure throughput.
//
//	go run ./examples/rbmmcmc
package main

import (
	"fmt"
	"log"

	"github.com/vqmc-scale/parvqmc"
)

func main() {
	const n = 12

	problem := parvqmc.TIM(n, 3)
	fmt.Printf("TIM instance with %d sites, RBM wavefunction, MCMC sampling\n", n)

	run := func(batched bool) *parvqmc.Result {
		res, err := parvqmc.Train(problem, parvqmc.Options{
			Model:        "rbm",
			Sampler:      "mcmc",
			Hidden:       24,
			BatchSize:    256,
			Iterations:   400,
			EvalBatch:    512,
			Seed:         11,
			LearningRate: 0.003,
			BatchedEval:  &batched,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	batched := run(true)
	scalar := run(false)

	fmt.Printf("batched eval: E = %.6f +- %.6f  (%v)\n",
		batched.Energy, batched.Std, batched.TrainTime.Round(1e6))
	fmt.Printf("scalar  eval: E = %.6f +- %.6f  (%v)\n",
		scalar.Energy, scalar.Std, scalar.TrainTime.Round(1e6))
	if batched.Energy == scalar.Energy && batched.Std == scalar.Std {
		fmt.Println("paths are bitwise identical: the batched evaluator is a pure throughput knob")
	} else {
		log.Fatal("paths diverged — the BatchEvaluator contract is broken")
	}

	exact, err := problem.ExactGroundEnergy()
	if err != nil {
		log.Fatal(err)
	}
	// The residual gap is a property of the RBM&MCMC pipeline itself, not
	// of the evaluation path — the paper's comparison finds MADE with exact
	// sampling (examples/quickstart) converges much tighter on TIM.
	fmt.Printf("exact energy: %.6f  (relative gap %.3f%%; see examples/quickstart for MADE&AUTO)\n",
		exact, 100*(batched.Energy-exact)/(-exact))
}
