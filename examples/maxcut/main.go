// Max-Cut: use VQMC as a combinatorial-optimization heuristic (Section 5.3
// of the paper) on a dense random graph, and compare against the classical
// baselines — random cut, Goemans-Williamson SDP rounding, and
// Burer-Monteiro with Riemannian trust-region optimization.
//
//	go run ./examples/maxcut
package main

import (
	"fmt"
	"log"

	"github.com/vqmc-scale/parvqmc"
)

func main() {
	const n = 40

	problem := parvqmc.MaxCut(n, 11)
	fmt.Printf("Max-Cut on a random G(n=%d, p=3/4) graph, total edge weight %.0f\n",
		n, problem.TotalEdgeWeight())
	fmt.Printf("%-22s %s\n", "method", "cut")

	for _, method := range []string{"random", "gw", "bm"} {
		res, err := parvqmc.SolveMaxCutClassical(problem, method, 3)
		if err != nil {
			log.Fatal(err)
		}
		name := map[string]string{
			"random": "Random assignment",
			"gw":     "Goemans-Williamson",
			"bm":     "Burer-Monteiro (RTR)",
		}[method]
		if res.SDPBound > 0 {
			fmt.Printf("%-22s %.0f   (SDP upper bound %.1f)\n", name, res.Cut, res.SDPBound)
		} else {
			fmt.Printf("%-22s %.0f\n", name, res.Cut)
		}
	}

	// VQMC with the paper's strongest configuration: MADE + AUTO + SGD+SR.
	res, err := parvqmc.Train(problem, parvqmc.Options{
		Optimizer:          "sgd",
		StochasticReconfig: true,
		BatchSize:          512,
		Iterations:         300,
		EvalBatch:          1024,
		Seed:               4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %.1f   (mean over the evaluation batch)\n", "VQMC (MADE+AUTO+SR)", res.Cut)
}
